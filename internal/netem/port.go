package netem

import (
	"fmt"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// SharedBuffer is a switch-wide packet buffer pool managed with the
// Choudhury–Hahne dynamic threshold: a queue may accept a packet only while
// its occupancy stays below Alpha × (free buffer). All ports of a switch
// share one SharedBuffer.
type SharedBuffer struct {
	Total units.ByteSize
	Alpha float64
	used  int64
}

// NewSharedBuffer returns a pool of the given size with dynamic threshold
// factor alpha (the paper uses 1/4).
func NewSharedBuffer(total units.ByteSize, alpha float64) *SharedBuffer {
	return &SharedBuffer{Total: total, Alpha: alpha}
}

// Used reports the bytes currently held.
func (s *SharedBuffer) Used() int64 { return s.used }

// admits reports whether a queue currently holding qbytes may accept size
// more bytes.
func (s *SharedBuffer) admits(qbytes, size int64) bool {
	if s.used+size > int64(s.Total) {
		return false
	}
	free := int64(s.Total) - s.used
	return float64(qbytes+size) <= s.Alpha*float64(free)
}

// PortStats accumulates per-port transmit counters, including a by-kind
// byte breakdown (credits vs proactive vs reactive vs legacy, etc.) for
// utilization studies without per-flow sampling.
type PortStats struct {
	TxPackets   int64
	TxBytes     int64
	TxBytesKind [16]int64 // indexed by Kind
}

// PortConfig describes an egress port's queues and classification.
type PortConfig struct {
	// Queues lists the queue configurations, indexed by queue number.
	Queues []QueueConfig
	// Classify maps a packet to a queue index. Nil means "queue = Class",
	// clamped to the last queue.
	Classify func(*Packet) int
}

// Port is a directed egress: a set of queues, a scheduler (strict priority
// across bands, DWRR within a band, optional per-queue pacing), a
// serializer at the line rate, and a propagation delay to the peer node.
type Port struct {
	eng   *sim.Engine
	name  string
	rate  units.Rate
	prop  sim.Time
	peer  Node
	owner NodeID

	queues   []*queue
	bands    [][]*queue
	rr       []int
	classify func(*Packet) int
	shared   *SharedBuffer

	busy   bool
	wakeAt sim.Time // earliest pending eligibility wake; 0 when none

	// Delivery pipeline: arrivals at the peer are FIFO with a constant
	// propagation offset, so one scheduled event per port suffices
	// instead of one per in-flight packet (keeps the event heap small).
	pipe     []pipeEntry
	pipeHead int

	txDoneFn  func()
	deliverFn func()
	wakeFn    func() // pre-bound wake: one closure per port, not per pacing stall

	// Profiling attribution for the events this port schedules (pure
	// metadata — never affects event order).
	compTx      sim.Component // serialization-done events
	compDeliver sim.Component // propagation / peer-delivery events
	compPacing  sim.Component // rate-limit eligibility wakes

	pool *PacketPool // optional packet free list; drops recycle through it

	// Fault-injection state (see faults.go). effRate is the current
	// serialization rate: rate unless degraded by SetRateFraction.
	down       bool
	effRate    units.Rate
	ge         GilbertElliott
	geOn       bool
	geBad      bool
	creditLoss float64
	faults     FaultStats

	hop HopObserver // optional read-only packet-event observer

	// remote, when set, replaces the local propagation pipeline: packets
	// leaving the serializer are handed to it (with their arrival time)
	// instead of being scheduled on this engine — the cut point sharded
	// runs use for wires whose peer lives on another shard's engine.
	remote func(at sim.Time, pkt *Packet)

	stats PortStats
}

type pipeEntry struct {
	at  sim.Time
	pkt *Packet
}

// NewPort builds an egress port. shared may be nil for ports with only
// privately-capped queues; queues with CapBytes==0 then have unlimited
// buffer (useful for host NICs).
func NewPort(eng *sim.Engine, name string, rate units.Rate, prop sim.Time, cfg PortConfig, shared *SharedBuffer) *Port {
	if len(cfg.Queues) == 0 {
		panic("netem: port with no queues")
	}
	p := &Port{
		eng:      eng,
		name:     name,
		rate:     rate,
		effRate:  rate,
		prop:     prop,
		classify: cfg.Classify,
		shared:   shared,
	}
	maxBand := 0
	for i, qc := range cfg.Queues {
		q := newQueue(qc)
		q.idx = i
		p.queues = append(p.queues, q)
		if qc.Band > maxBand {
			maxBand = qc.Band
		}
	}
	p.bands = make([][]*queue, maxBand+1)
	for _, q := range p.queues {
		p.bands[q.cfg.Band] = append(p.bands[q.cfg.Band], q)
	}
	p.rr = make([]int, maxBand+1)
	p.txDoneFn = func() {
		p.busy = false
		p.kick()
	}
	p.deliverFn = p.deliverHead
	p.wakeFn = p.wake
	p.compTx = eng.Component("netem/tx")
	p.compDeliver = eng.Component("netem/deliver")
	p.compPacing = eng.Component("netem/pacing")
	return p
}

// deliverAt queues a packet for arrival at the peer at time t.
func (p *Port) deliverAt(t sim.Time, pkt *Packet) {
	if p.remote != nil {
		p.remote(t, pkt)
		return
	}
	p.pipe = append(p.pipe, pipeEntry{at: t, pkt: pkt})
	if len(p.pipe)-p.pipeHead == 1 {
		prev := p.eng.SetComponent(p.compDeliver)
		p.eng.At(t, p.deliverFn)
		p.eng.SetComponent(prev)
	}
}

// deliverHead delivers the head packet and schedules the next arrival.
func (p *Port) deliverHead() {
	e := p.pipe[p.pipeHead]
	p.pipe[p.pipeHead].pkt = nil
	p.pipeHead++
	if p.pipeHead >= len(p.pipe) {
		p.pipe = p.pipe[:0]
		p.pipeHead = 0
	} else if p.pipeHead > 64 && p.pipeHead*2 > len(p.pipe) {
		n := copy(p.pipe, p.pipe[p.pipeHead:])
		for i := n; i < len(p.pipe); i++ {
			p.pipe[i].pkt = nil
		}
		p.pipe = p.pipe[:n]
		p.pipeHead = 0
	}
	p.peer.Receive(e.pkt)
	if p.pipeHead < len(p.pipe) {
		prev := p.eng.SetComponent(p.compDeliver)
		p.eng.At(p.pipe[p.pipeHead].at, p.deliverFn)
		p.eng.SetComponent(prev)
	}
}

// Connect attaches the receiving peer. Must be called before any Send.
func (p *Port) Connect(peer Node) { p.peer = peer }

// SetRemote diverts this port's propagation stage to fn: serialized
// packets are handed to fn with their arrival time instead of being
// delivered to the peer on this engine. Sharded runs install the
// cross-shard edge hand-off here for wires that cross a partition cut;
// nil restores local delivery. The serializer (txDone, pacing wakes)
// stays on this port's own engine either way.
func (p *Port) SetRemote(fn func(at sim.Time, pkt *Packet)) { p.remote = fn }

// Engine returns the engine this port schedules on (the owning node's
// shard engine in sharded runs).
func (p *Port) Engine() *sim.Engine { return p.eng }

// Prop returns the link's one-way propagation delay (the lookahead
// contribution of a cross-shard wire).
func (p *Port) Prop() sim.Time { return p.prop }

// Peer returns the node this port delivers to (nil before Connect). The
// fault layer uses it to resolve "the egress toward host X" by topology
// rather than by port-registration index.
func (p *Port) Peer() Node { return p.peer }

// SetOwner records the node the port belongs to (for diagnostics).
func (p *Port) SetOwner(id NodeID) { p.owner = id }

// Rate returns the port's line rate.
func (p *Port) Rate() units.Rate { return p.rate }

// Name returns the port's label.
func (p *Port) Name() string { return p.name }

// Stats returns a copy of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// QueueStats returns a copy of queue i's counters.
func (p *Port) QueueStats(i int) QueueStats { return p.queues[i].stats }

// QueueConfig returns queue i's configuration.
func (p *Port) QueueConfig(i int) QueueConfig { return p.queues[i].cfg }

// QueueBytes returns queue i's instantaneous occupancy in bytes, and the
// portion of it that is Red-colored.
func (p *Port) QueueBytes(i int) (total, red int64) {
	return p.queues[i].lenBytes(), p.queues[i].redB
}

// NumQueues returns how many queues the port has.
func (p *Port) NumQueues() int { return len(p.queues) }

// Send classifies, admits, and enqueues pkt, then kicks the scheduler.
// Drops are counted in the queue stats; the packet is silently discarded.
func (p *Port) Send(pkt *Packet) {
	if p.injectFault(pkt) {
		return
	}
	qi := int(pkt.Class)
	if p.classify != nil {
		qi = p.classify(pkt)
	}
	if qi < 0 {
		qi = 0
	}
	if qi >= len(p.queues) {
		qi = len(p.queues) - 1
	}
	q := p.queues[qi]
	sz := int64(pkt.Size)

	// Color-aware selective dropping (paper §4.1): red packets are dropped
	// once the queue's red occupancy would exceed the threshold; green
	// packets are only subject to buffer admission.
	if q.cfg.RedDropThreshold > 0 && pkt.Color == Red && q.redB+sz > int64(q.cfg.RedDropThreshold) {
		q.stats.Dropped++
		q.stats.DroppedRed++
		if p.hop != nil {
			p.hop.HopDrop(p.eng.Now(), p, qi, pkt, DropRedThreshold)
		}
		p.pool.put(pkt)
		return
	}

	// Buffer admission: private cap, or shared dynamic threshold.
	if q.cfg.CapBytes > 0 {
		if q.bytes+sz > int64(q.cfg.CapBytes) {
			q.stats.Dropped++
			q.stats.DroppedOver++
			if p.hop != nil {
				p.hop.HopDrop(p.eng.Now(), p, qi, pkt, DropPrivateCap)
			}
			p.pool.put(pkt)
			return
		}
	} else if p.shared != nil {
		if !p.shared.admits(q.bytes, sz) {
			q.stats.Dropped++
			q.stats.DroppedOver++
			if p.hop != nil {
				p.hop.HopDrop(p.eng.Now(), p, qi, pkt, DropSharedBuffer)
			}
			p.pool.put(pkt)
			return
		}
		p.shared.used += sz
	}

	// ECN marking on ECN-capable packets: RED-style probabilistic when
	// configured, otherwise DCTCP-style instantaneous threshold.
	if pkt.ECNCapable {
		occ := q.bytes + sz
		switch {
		case q.cfg.REDMax > 0:
			if occ >= int64(q.cfg.REDMax) {
				pkt.CE = true
				q.stats.Marked++
			} else if occ > int64(q.cfg.REDMin) {
				frac := float64(occ-int64(q.cfg.REDMin)) / float64(q.cfg.REDMax-q.cfg.REDMin)
				if p.eng.Rand().Float64() < frac*q.cfg.REDPMax {
					pkt.CE = true
					q.stats.Marked++
				}
			}
		case q.cfg.ECNThreshold > 0 && occ > int64(q.cfg.ECNThreshold):
			pkt.CE = true
			q.stats.Marked++
		}
	}

	pkt.enqAt = p.eng.Now()
	q.push(pkt)
	if p.hop != nil {
		p.hop.HopEnqueue(pkt.enqAt, p, qi, pkt, q.bytes)
	}
	p.kick()
}

// kick starts a transmission if the port is up, idle, and a packet is
// eligible. While administratively down the serializer stays paused;
// SetDown(false) re-kicks it.
func (p *Port) kick() {
	if p.busy || p.down {
		return
	}
	pkt, q, wait := p.selectNext()
	if pkt == nil {
		if wait > 0 && (p.wakeAt == 0 || wait < p.wakeAt || p.wakeAt <= p.eng.Now()) {
			p.wakeAt = wait
			prev := p.eng.SetComponent(p.compPacing)
			p.eng.At(wait, p.wakeFn)
			p.eng.SetComponent(prev)
		}
		return
	}
	if q.cfg.CapBytes == 0 && p.shared != nil {
		p.shared.used -= int64(pkt.Size)
	}
	if q.cfg.RateLimit > 0 {
		// Pace at exactly RateLimit with one-packet granularity.
		next := q.nextEligible
		if now := p.eng.Now(); next < now {
			next = now
		}
		q.nextEligible = next + q.cfg.RateLimit.TxTime(pkt.Size)
	}
	p.busy = true
	tx := p.effRate.TxTime(pkt.Size)
	if p.hop != nil {
		now := p.eng.Now()
		p.hop.HopDequeue(now, p, q.idx, pkt, now-pkt.enqAt, tx)
	}
	p.stats.TxPackets++
	p.stats.TxBytes += int64(pkt.Size)
	if int(pkt.Kind) < len(p.stats.TxBytesKind) {
		p.stats.TxBytesKind[pkt.Kind] += int64(pkt.Size)
	}
	prev := p.eng.SetComponent(p.compTx)
	p.eng.After(tx, p.txDoneFn)
	p.eng.SetComponent(prev)
	p.deliverAt(p.eng.Now()+tx+p.prop, pkt)
}

// wake fires when a rate-limited queue becomes eligible again.
func (p *Port) wake() {
	if p.wakeAt <= p.eng.Now() {
		p.wakeAt = 0
	}
	p.kick()
}

// eligible reports whether q may dequeue right now.
func (p *Port) eligible(q *queue) bool {
	if q.empty() {
		return false
	}
	return q.cfg.RateLimit == 0 || q.nextEligible <= p.eng.Now()
}

// selectNext picks the next packet under strict-priority + DWRR + pacing.
// When nothing is eligible but some rate-limited queue holds data, it
// returns the earliest time a queue becomes eligible.
func (p *Port) selectNext() (*Packet, *queue, sim.Time) {
	var wait sim.Time
	for b, qs := range p.bands {
		anyEligible := false
		for _, q := range qs {
			if q.empty() {
				continue
			}
			if p.eligible(q) {
				anyEligible = true
			} else if wait == 0 || q.nextEligible < wait {
				wait = q.nextEligible
			}
		}
		if !anyEligible {
			continue // rate-limited band waiting: serve lower bands meanwhile
		}
		if len(qs) == 1 {
			q := qs[0]
			return q.pop(), q, 0
		}
		// DWRR within the band. Queues accumulate one quantum per visit;
		// a queue keeps the pointer while its deficit affords its head.
		n := len(qs)
		for pass := 0; pass < 1000*n; pass++ {
			q := qs[p.rr[b]]
			if q.empty() {
				q.deficit = 0
				p.rr[b] = (p.rr[b] + 1) % n
				continue
			}
			if !p.eligible(q) {
				p.rr[b] = (p.rr[b] + 1) % n
				continue
			}
			head := q.headPkt()
			if q.deficit >= int64(head.Size) {
				q.deficit -= int64(head.Size)
				return q.pop(), q, 0
			}
			q.deficit += q.quantum
			p.rr[b] = (p.rr[b] + 1) % n
		}
		panic(fmt.Sprintf("netem: DWRR failed to converge on port %s band %d", p.name, b))
	}
	return nil, nil, wait
}
