package netem

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// fillAndCount backs up a slow port to a steady occupancy and returns the
// marked fraction of delivered ECN-capable packets.
func fillAndCount(t *testing.T, cfg QueueConfig, rate units.Rate, n int) float64 {
	t.Helper()
	eng := sim.NewEngine(21)
	p := NewPort(eng, "red", rate, 0, PortConfig{Queues: []QueueConfig{cfg}}, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	// Offer slightly above line rate so the queue hovers.
	interval := rate.TxTime(1000) * 9 / 10
	for i := 0; i < n; i++ {
		at := sim.Time(i) * interval
		eng.At(at, func() {
			p.Send(&Packet{Class: 0, Size: 1000, ECNCapable: true})
		})
	}
	eng.Run(sim.Time(n+1000) * interval)
	marked := 0
	for _, pk := range sk.arrived {
		if pk.CE {
			marked++
		}
	}
	return float64(marked) / float64(len(sk.arrived))
}

func TestREDMarksProbabilistically(t *testing.T) {
	// Queue hovers in the RED band: some, but not all, packets marked.
	frac := fillAndCount(t, QueueConfig{
		Name:    "q",
		REDMin:  2_000,
		REDMax:  500_000, // far above the standing queue
		REDPMax: 0.5,
	}, 1*units.Gbps, 3000)
	if frac <= 0.001 || frac >= 0.5 {
		t.Fatalf("RED marked fraction %.3f, want in (0, 0.5)", frac)
	}
}

func TestREDMarksAllAboveMax(t *testing.T) {
	eng := sim.NewEngine(3)
	cfg := PortConfig{Queues: []QueueConfig{{
		Name: "q", REDMin: 1_000, REDMax: 3_000, REDPMax: 0.1,
	}}}
	p := NewPort(eng, "red2", 1*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	for i := 0; i < 30; i++ {
		p.Send(&Packet{Class: 0, Size: 1000, ECNCapable: true})
	}
	eng.Run(sim.Second)
	// All packets enqueued after occupancy passed 3000B must be marked.
	unmarkedLate := 0
	for i, pk := range sk.arrived {
		if i >= 5 && !pk.CE {
			unmarkedLate++
		}
	}
	if unmarkedLate != 0 {
		t.Fatalf("%d packets above REDMax escaped marking", unmarkedLate)
	}
}

func TestREDBelowMinNeverMarks(t *testing.T) {
	eng := sim.NewEngine(3)
	cfg := PortConfig{Queues: []QueueConfig{{
		Name: "q", REDMin: 100_000, REDMax: 200_000, REDPMax: 1,
	}}}
	p := NewPort(eng, "red3", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	for i := 0; i < 50; i++ {
		p.Send(&Packet{Class: 0, Size: 1000, ECNCapable: true})
	}
	eng.Run(sim.Second)
	for _, pk := range sk.arrived {
		if pk.CE {
			t.Fatal("packet marked below REDMin")
		}
	}
}

func TestREDTakesPrecedenceOverThreshold(t *testing.T) {
	// With both configured, RED wins: a tiny hard threshold must be
	// ignored when the RED band sits higher.
	eng := sim.NewEngine(3)
	cfg := PortConfig{Queues: []QueueConfig{{
		Name:         "q",
		ECNThreshold: 500, // would mark almost everything
		REDMin:       50_000,
		REDMax:       100_000,
		REDPMax:      1,
	}}}
	p := NewPort(eng, "red4", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	for i := 0; i < 20; i++ {
		p.Send(&Packet{Class: 0, Size: 1000, ECNCapable: true})
	}
	eng.Run(sim.Second)
	for _, pk := range sk.arrived {
		if pk.CE {
			t.Fatal("hard threshold applied although RED is configured")
		}
	}
}
