package netem

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// dropWatcher is a minimal HopObserver that records only drops, the way
// the forensics recorder sees them.
type dropWatcher struct {
	drops   int
	reasons map[DropReason]int
	queues  map[int]int
}

func (w *dropWatcher) HopEnqueue(sim.Time, *Port, int, *Packet, int64)              {}
func (w *dropWatcher) HopDequeue(sim.Time, *Port, int, *Packet, sim.Time, sim.Time) {}
func (w *dropWatcher) HopDrop(now sim.Time, p *Port, queue int, pkt *Packet, reason DropReason) {
	w.drops++
	if w.reasons == nil {
		w.reasons = map[DropReason]int{}
		w.queues = map[int]int{}
	}
	w.reasons[reason]++
	w.queues[queue]++
}

// faultFabric hand-builds the paper's 2-to-1 testbed (two senders, one
// receiver, one switch) without importing topo (which would cycle).
func faultFabric(eng *sim.Engine) (*Network, []*Host, *Port) {
	net := NewNetwork(eng)
	sw := NewSwitch(eng, net.AllocID(), "sw0", nil)
	qcfg := PortConfig{Queues: []QueueConfig{{Name: "Q0"}}}
	var egress []*Port
	for _, name := range []string{"h0", "h1", "h2"} {
		id := net.AllocID()
		nic := NewPort(eng, name+":nic", 10*units.Gbps, sim.Microsecond, qcfg, nil)
		h := NewHost(eng, id, name, nic, 0)
		nic.Connect(sw)
		net.AddHost(h)
		p := NewPort(eng, "sw0->"+name, 10*units.Gbps, sim.Microsecond, qcfg, nil)
		p.Connect(h)
		sw.AddPort(p)
		sw.AddRoute(id, p)
		egress = append(egress, p)
	}
	net.AddSwitch(sw)
	return net, net.Hosts, egress[2] // the 2-to-1 bottleneck egress
}

// TestLinkDownFault: loss rate 1.0 on the receiver's egress models a
// dead link — every packet is charged to fault injection, nothing is
// delivered, and each loss surfaces as a DropFault hop event with
// queue -1 (faults hit before classification).
func TestLinkDownFault(t *testing.T) {
	eng := sim.NewEngine(1)
	net, hosts, bottleneck := faultFabric(eng)
	w := &dropWatcher{}
	net.SetHopObserver(w)
	bottleneck.SetLossRate(1.0)

	const n = 40
	for i := 0; i < n; i++ {
		hosts[i%2].Send(&Packet{Dst: hosts[2].NodeID(), Flow: uint64(1 + i%2), Seq: uint32(i), Size: 1500})
	}
	eng.Run(sim.Second)

	if hosts[2].RxPackets != 0 {
		t.Fatalf("dead link delivered %d packets", hosts[2].RxPackets)
	}
	st := bottleneck.FaultStats()
	if st.Injected != n {
		t.Fatalf("FaultStats.Injected = %d, want %d", st.Injected, n)
	}
	if w.drops != n || w.reasons[DropFault] != n {
		t.Fatalf("observer saw %d drops (%v), want %d fault drops", w.drops, w.reasons, n)
	}
	if w.queues[-1] != n {
		t.Fatalf("fault drops should report queue -1, got %v", w.queues)
	}
	// Fault drops are injection accounting, not queue drops.
	for q := 0; q < bottleneck.NumQueues(); q++ {
		if s := bottleneck.QueueStats(q); s.DroppedOver != 0 || s.DroppedRed != 0 {
			t.Fatalf("fault loss leaked into queue %d stats: %+v", q, s)
		}
	}
}

// TestPartialCorruptionFault: a lossy (not dead) link drops a
// deterministic subset; delivered + injected must account for every
// packet, and the same run replays identically with the same seed.
func TestPartialCorruptionFault(t *testing.T) {
	run := func() (delivered, injected, observed int64) {
		eng := sim.NewEngine(7)
		net, hosts, bottleneck := faultFabric(eng)
		w := &dropWatcher{}
		net.SetHopObserver(w)
		bottleneck.SetLossRate(0.3)
		const n = 200
		for i := 0; i < n; i++ {
			hosts[i%2].Send(&Packet{Dst: hosts[2].NodeID(), Flow: uint64(1 + i%2), Seq: uint32(i), Size: 1500})
		}
		eng.Run(sim.Second)
		return hosts[2].RxPackets, bottleneck.FaultStats().Injected, int64(w.reasons[DropFault])
	}

	delivered, injected, observed := run()
	if delivered == 0 || injected == 0 {
		t.Fatalf("30%% loss should both deliver and drop: delivered=%d injected=%d", delivered, injected)
	}
	if delivered+injected != 200 {
		t.Fatalf("delivered %d + injected %d != 200 sent", delivered, injected)
	}
	if observed != injected {
		t.Fatalf("observer saw %d fault drops, injector counted %d", observed, injected)
	}

	d2, i2, o2 := run()
	if d2 != delivered || i2 != injected || o2 != observed {
		t.Fatalf("fault injection not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			delivered, injected, observed, d2, i2, o2)
	}
}
