package netem

// PacketPool is an opt-in free list for Packet structs, shared by every
// node of one network (one engine drives one network from one goroutine,
// so no locking is needed; parallel sweeps each build their own network
// and therefore their own pool).
//
// Ownership contract when a pool is enabled:
//
//   - Endpoints allocate outgoing frames with Host.NewPacket and hand them
//     to Host.Send. The network owns the packet from that point on.
//   - A packet is recycled exactly once, at the end of its life: by
//     Host.Receive after the transport handler returns, or by the dropping
//     Port when admission fails.
//   - Consumers — transport Handle callbacks and HopObservers — must not
//     retain a *Packet (or its Meta) past the callback; copy what they
//     need. All in-repo transports and observers obey this.
//
// Pooling never changes simulation results: packets are identical whether
// they come from the pool or the heap (see TestGoldenDigestPooled).
type PacketPool struct {
	free []*Packet

	// Recycled and Fresh count Put calls and pool misses (observability;
	// a healthy steady state recycles nearly everything).
	Recycled int64
	Fresh    int64
}

// get returns a zeroed packet, reusing a recycled one when available.
func (p *PacketPool) get() *Packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*pkt = Packet{}
		return pkt
	}
	p.Fresh++
	return &Packet{}
}

// put returns a consumed packet to the free list. Nil pools and nil
// packets no-op, so call sites need no guards.
func (p *PacketPool) put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	pkt.Meta = nil // drop the payload reference so it can be collected
	p.free = append(p.free, pkt)
	p.Recycled++
}

// EnablePacketPool installs one shared packet free list on every host and
// every egress port of the network. Call before the run starts.
func (n *Network) EnablePacketPool() *PacketPool {
	pool := &PacketPool{}
	for _, s := range n.Switches {
		s.SetPool(pool)
	}
	for _, h := range n.Hosts {
		h.SetPool(pool)
	}
	return pool
}

// SetPool installs pool on every egress port of the switch. Sharded runs
// give each shard its own pool (the free list is single-goroutine state),
// assigning switches by partition instead of network-wide.
func (s *Switch) SetPool(pool *PacketPool) {
	for _, p := range s.ports {
		p.pool = pool
	}
}

// SetPool installs pool on the host and its NIC.
func (h *Host) SetPool(pool *PacketPool) {
	h.pool = pool
	h.nic.pool = pool
}
