package netem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// Property: the shared buffer's used counter always equals the summed
// occupancy of the queues drawing from it, and returns to zero when all
// ports drain — under arbitrary interleavings of arrivals across ports.
func TestSharedBufferAccountingProperty(t *testing.T) {
	f := func(arrivals []uint16) bool {
		eng := sim.NewEngine(11)
		shared := NewSharedBuffer(200*units.KB, 0.5)
		var ports []*Port
		sk := &sink{id: 1, eng: eng}
		for i := 0; i < 3; i++ {
			p := NewPort(eng, "p", 1*units.Gbps, 0, PortConfig{Queues: []QueueConfig{
				{Name: "a", Band: 0, Weight: 1},
				{Name: "b", Band: 0, Weight: 2},
			}}, shared)
			p.Connect(sk)
			ports = append(ports, p)
		}
		for i, a := range arrivals {
			port := ports[int(a)%3]
			size := 64 + int(a%13)*100
			at := sim.Time(i) * 500 * sim.Nanosecond
			eng.At(at, func() {
				port.Send(&Packet{Class: Class(a % 2), Size: size})
			})
		}
		// Invariant check midway.
		eng.At(sim.Millisecond/2, func() {
			var sum int64
			for _, p := range ports {
				for q := 0; q < p.NumQueues(); q++ {
					b, _ := p.QueueBytes(q)
					sum += b
				}
			}
			if sum != shared.Used() {
				t.Errorf("mid-run: queue sum %d != shared used %d", sum, shared.Used())
			}
		})
		eng.Run(sim.Second)
		return shared.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: under persistent backlog, DWRR byte shares match weights for
// arbitrary weight pairs.
func TestDWRRWeightProperty(t *testing.T) {
	f := func(wa, wb uint8) bool {
		fa := 1 + float64(wa%8)
		fb := 1 + float64(wb%8)
		eng := sim.NewEngine(7)
		cfg := PortConfig{Queues: []QueueConfig{
			{Name: "a", Band: 0, Weight: fa},
			{Name: "b", Band: 0, Weight: fb},
		}}
		p := NewPort(eng, "w", 10*units.Gbps, 0, cfg, nil)
		sk := &sink{id: 1, eng: eng}
		p.Connect(sk)
		for i := 0; i < 3000; i++ {
			p.Send(&Packet{Class: 0, Size: 1000})
			p.Send(&Packet{Class: 1, Size: 1000})
		}
		eng.Run((10 * units.Gbps).TxTime(1000) * 2000)
		var ba, bb int64
		for _, pk := range sk.arrived {
			if pk.Class == 0 {
				ba += int64(pk.Size)
			} else {
				bb += int64(pk.Size)
			}
		}
		want := fa / (fa + fb)
		got := float64(ba) / float64(ba+bb)
		return got > want-0.08 && got < want+0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// The token-bucket pacer hits its configured long-run rate precisely.
func TestRateLimiterLongRunPrecision(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "credit", Band: 0, RateLimit: 273 * units.Mbps, CapBytes: 4 * units.KB},
		{Name: "data", Band: 1},
	}}
	p := NewPort(eng, "rl", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	// Offer credits faster than the limit for 10ms; keep data flowing too.
	for i := 0; i < 10000; i++ {
		at := sim.Time(i) * sim.Microsecond
		eng.At(at, func() {
			p.Send(&Packet{Class: 0, Size: 84})
			p.Send(&Packet{Class: 1, Size: 1538})
		})
	}
	eng.Run(10 * sim.Millisecond)
	var creditB int64
	for _, pk := range sk.arrived {
		if pk.Class == 0 {
			creditB += int64(pk.Size)
		}
	}
	got := units.RateOf(creditB, 10*sim.Millisecond)
	if got < 260*units.Mbps || got > 280*units.Mbps {
		t.Fatalf("credit rate %v, want ≈273Mbps", got)
	}
}

// Strict priority: a saturated low band never delays the high band by
// more than one in-flight frame.
func TestStrictPriorityLatencyBound(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "hi", Band: 0},
		{Name: "lo", Band: 1},
	}}
	p := NewPort(eng, "sp", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	// Saturate low priority.
	for i := 0; i < 1000; i++ {
		p.Send(&Packet{Class: 1, Size: 1538})
	}
	frame := (10 * units.Gbps).TxTime(1538)
	worst := sim.Time(0)
	for i := 0; i < 50; i++ {
		sent := sim.Time(i) * 20 * sim.Microsecond
		eng.At(sent, func() {
			p.Send(&Packet{Class: 0, Size: 84, SentAt: eng.Now()})
		})
	}
	eng.Run(5 * sim.Millisecond)
	for i, pk := range sk.arrived {
		if pk.Class == 0 {
			delay := sk.at[i] - pk.SentAt
			if delay > worst {
				worst = delay
			}
		}
	}
	// Bound: one full low-priority frame already serializing + own
	// serialization.
	bound := frame + (10 * units.Gbps).TxTime(84) + sim.Microsecond
	if worst > bound {
		t.Fatalf("high-priority delay %v exceeds bound %v", worst, bound)
	}
}

// Fault injection must never fire at rate 0 and always fire at rate 1.
func TestFaultInjectionExtremes(t *testing.T) {
	eng := sim.NewEngine(2)
	p, sk := singleQueuePort(eng, 10*units.Gbps, 0)
	p.SetLossRate(0)
	for i := 0; i < 100; i++ {
		p.Send(mkPkt(0, 100))
	}
	eng.Run(sim.Millisecond)
	if len(sk.arrived) != 100 {
		t.Fatalf("rate 0 dropped packets: %d arrived", len(sk.arrived))
	}
	p.SetLossRate(1)
	for i := 0; i < 100; i++ {
		p.Send(mkPkt(0, 100))
	}
	eng.Run(2 * sim.Millisecond)
	if len(sk.arrived) != 100 {
		t.Fatalf("rate 1 delivered packets: %d arrived", len(sk.arrived))
	}
	if p.FaultStats().Injected != 100 {
		t.Fatalf("injected = %d, want 100", p.FaultStats().Injected)
	}
}

// Delivery pipeline: per-port FIFO order is preserved even with
// interleaved enqueues and drains.
func TestDeliveryPipelineOrderProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		eng := sim.NewEngine(13)
		p, sk := singleQueuePort(eng, 1*units.Gbps, 3*sim.Microsecond)
		for i, s := range sizes {
			seq := uint32(i)
			size := 64 + int(s)*4
			at := sim.Time(i) * sim.Microsecond
			eng.At(at, func() {
				p.Send(&Packet{Class: 0, Size: size, Seq: seq})
			})
		}
		eng.Run(sim.Second)
		if len(sk.arrived) != len(sizes) {
			return false
		}
		for i, pk := range sk.arrived {
			if pk.Seq != uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}
