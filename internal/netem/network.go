package netem

import (
	"flexpass/internal/sim"
)

// Network is a container for the simulated fabric: the engine plus every
// node, with stable IDs assigned in construction order.
type Network struct {
	Eng      *sim.Engine
	Hosts    []*Host
	Switches []*Switch
	nodes    map[NodeID]Node
	nextID   NodeID
}

// NewNetwork creates an empty network bound to eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{Eng: eng, nodes: make(map[NodeID]Node)}
}

// AllocID hands out the next node ID.
func (n *Network) AllocID() NodeID {
	id := n.nextID
	n.nextID++
	return id
}

// AddHost registers a host.
func (n *Network) AddHost(h *Host) {
	n.Hosts = append(n.Hosts, h)
	n.nodes[h.NodeID()] = h
}

// AddSwitch registers a switch.
func (n *Network) AddSwitch(s *Switch) {
	n.Switches = append(n.Switches, s)
	n.nodes[s.NodeID()] = s
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Host returns host i (panics if out of range).
func (n *Network) Host(i int) *Host { return n.Hosts[i] }
