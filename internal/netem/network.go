package netem

import (
	"flexpass/internal/sim"
)

// Network is a container for the simulated fabric: the engine plus every
// node, with stable IDs assigned in construction order.
type Network struct {
	Eng      *sim.Engine
	Hosts    []*Host
	Switches []*Switch
	nodes    map[NodeID]Node
	nextID   NodeID
}

// NewNetwork creates an empty network bound to eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{Eng: eng, nodes: make(map[NodeID]Node)}
}

// AllocID hands out the next node ID.
func (n *Network) AllocID() NodeID {
	id := n.nextID
	n.nextID++
	return id
}

// AddHost registers a host.
func (n *Network) AddHost(h *Host) {
	n.Hosts = append(n.Hosts, h)
	n.nodes[h.NodeID()] = h
}

// AddSwitch registers a switch.
func (n *Network) AddSwitch(s *Switch) {
	n.Switches = append(n.Switches, s)
	n.nodes[s.NodeID()] = s
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Host returns host i (panics if out of range).
func (n *Network) Host(i int) *Host { return n.Hosts[i] }

// EachPort visits every egress port in the network — switch egresses
// first (switch registration order, then port order), host NICs after —
// a deterministic order the fault layer relies on when one link pattern
// matches several ports.
func (n *Network) EachPort(f func(*Port)) {
	for _, s := range n.Switches {
		for _, p := range s.ports {
			f(p)
		}
	}
	for _, h := range n.Hosts {
		f(h.nic)
	}
}

// FindPort returns the port with the exact name, or nil.
func (n *Network) FindPort(name string) *Port {
	var found *Port
	n.EachPort(func(p *Port) {
		if found == nil && p.name == name {
			found = p
		}
	})
	return found
}

// PortsTo returns every egress port that delivers directly to the node
// with the given ID (the last hop toward a host), in EachPort order.
func (n *Network) PortsTo(id NodeID) []*Port {
	var out []*Port
	n.EachPort(func(p *Port) {
		if peer := p.Peer(); peer != nil && peer.NodeID() == id {
			out = append(out, p)
		}
	})
	return out
}
