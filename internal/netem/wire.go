package netem

import "flexpass/internal/units"

// Wire-size constants shared by the transports and the queue profiles.
// Sizes are on-the-wire bytes including Ethernet framing, matching the
// paper's prototype (Ethernet + IP + UDP + 18-byte FlexPass header).
const (
	// MTUWire is a full-size data frame on the wire.
	MTUWire = 1538
	// DataPayload is the application bytes carried by a full frame.
	DataPayload = 1460
	// CreditSize is an ExpressPass credit frame (84B minimum frame, as in
	// the ExpressPass design).
	CreditSize = 84
	// AckSize is an ACK frame.
	AckSize = 84
	// CtrlSize is a small control frame (credit request / stop).
	CtrlSize = 84
)

// CreditRatio is the credit-to-data wire ratio: limiting credits to
// rate×CreditRatio on a link limits the triggered data to rate on the
// reverse link.
const CreditRatio = float64(CreditSize) / float64(MTUWire)

// HeaderOverhead is the per-frame overhead for partial segments.
const HeaderOverhead = MTUWire - DataPayload

// CreditRateFor returns the credit rate that triggers data at frac of the
// given line rate (used for both switch credit-queue limits and per-flow
// pacer ceilings).
func CreditRateFor(line units.Rate, frac float64) units.Rate {
	return line.Scale(frac * CreditRatio)
}

// FrameBytes returns the wire size of a data frame carrying payload bytes.
func FrameBytes(payload int) int {
	if payload > DataPayload {
		payload = DataPayload
	}
	sz := payload + HeaderOverhead
	if sz < 84 {
		sz = 84
	}
	return sz
}
