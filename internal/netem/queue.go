package netem

import (
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// QueueConfig describes one egress queue of a port.
type QueueConfig struct {
	// Name labels the queue in stats output ("Q0", "Q1", ...).
	Name string

	// Band is the strict-priority band: band 0 is always served before band
	// 1, and so on. Queues in the same band share it via DWRR.
	Band int

	// Weight is the DWRR weight within the band. Zero means 1.
	Weight float64

	// ECNThreshold marks CE on ECN-capable packets when the queue's byte
	// occupancy after enqueue exceeds it (DCTCP-style instantaneous
	// threshold marking). Zero disables marking.
	ECNThreshold units.ByteSize

	// REDMin/REDMax/REDPMax enable RED-style probabilistic marking
	// instead of the hard threshold: below REDMin no packet is marked,
	// between REDMin and REDMax the marking probability rises linearly
	// to REDPMax, and above REDMax every ECN-capable packet is marked.
	// When REDMax is zero the hard ECNThreshold applies instead. The
	// paper's switches run "RED/ECN marking" on Q1; with REDMin=REDMax
	// the two configurations coincide, which is why threshold marking is
	// the default everywhere.
	REDMin  units.ByteSize
	REDMax  units.ByteSize
	REDPMax float64

	// RedDropThreshold drops incoming Red packets once the queue's
	// red-colored byte occupancy would exceed it (color-aware selective
	// dropping). Zero disables selective dropping.
	RedDropThreshold units.ByteSize

	// CapBytes is a hard private cap on the queue occupancy. When zero the
	// queue draws from the port's shared buffer under the dynamic
	// threshold. Credit queues use a small private cap (<1KB in the paper).
	CapBytes units.ByteSize

	// RateLimit paces dequeues from this queue (token-bucket at exactly
	// this rate with one-packet granularity). Zero means unlimited. Used
	// for the credit queue.
	RateLimit units.Rate
}

// QueueStats accumulates per-queue counters.
type QueueStats struct {
	Enqueued     int64 // packets accepted
	EnqueuedB    int64 // bytes accepted
	Dequeued     int64
	Dropped      int64 // all drops
	DroppedRed   int64 // drops due to the red threshold
	DroppedOver  int64 // drops due to buffer exhaustion / cap / dynamic threshold
	Marked       int64 // CE marks applied
	MaxOccupancy int64 // high-water mark, bytes
	MaxRed       int64 // high-water mark of red-colored bytes
}

// queue is a FIFO with byte accounting, CE marking, and selective dropping.
type queue struct {
	cfg   QueueConfig
	idx   int // position within the owning port (for hop observers)
	pkts  []*Packet
	head  int
	bytes int64 // current occupancy in bytes
	redB  int64 // bytes of Red packets currently queued

	deficit int64 // DWRR deficit counter
	quantum int64

	nextEligible sim.Time // rate limiter: earliest next dequeue instant

	stats QueueStats
}

func newQueue(cfg QueueConfig) *queue {
	w := cfg.Weight
	if w <= 0 {
		w = 1
	}
	q := &queue{cfg: cfg}
	// Quantum proportional to weight; the base quantum is one MTU so that
	// a weight-1 queue can always send a full frame per round.
	q.quantum = int64(w * 1538)
	if q.quantum < 64 {
		q.quantum = 64
	}
	return q
}

func (q *queue) empty() bool     { return q.head >= len(q.pkts) }
func (q *queue) lenBytes() int64 { return q.bytes }

func (q *queue) headPkt() *Packet {
	if q.empty() {
		return nil
	}
	return q.pkts[q.head]
}

func (q *queue) push(p *Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += int64(p.Size)
	if p.Color == Red {
		q.redB += int64(p.Size)
	}
	q.stats.Enqueued++
	q.stats.EnqueuedB += int64(p.Size)
	if q.bytes > q.stats.MaxOccupancy {
		q.stats.MaxOccupancy = q.bytes
	}
	if q.redB > q.stats.MaxRed {
		q.stats.MaxRed = q.redB
	}
}

func (q *queue) pop() *Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= int64(p.Size)
	if p.Color == Red {
		q.redB -= int64(p.Size)
	}
	q.stats.Dequeued++
	// Reclaim space once the slice is fully drained or mostly dead.
	if q.head >= len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	} else if q.head > 1024 && q.head*2 > len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}
