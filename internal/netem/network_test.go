package netem

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func TestNetworkRegistry(t *testing.T) {
	eng := sim.NewEngine(1)
	n := NewNetwork(eng)
	if n.AllocID() != 0 || n.AllocID() != 1 {
		t.Fatal("AllocID must count from 0")
	}
	nic := NewPort(eng, "nic", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
	h := NewHost(eng, 0, "h0", nic, 0)
	n.AddHost(h)
	sw := NewSwitch(eng, 1, "sw0", nil)
	n.AddSwitch(sw)
	if n.Node(0) != Node(h) || n.Node(1) != Node(sw) {
		t.Fatal("Node lookup broken")
	}
	if n.Host(0) != h {
		t.Fatal("Host lookup broken")
	}
	if n.Node(99) != nil {
		t.Fatal("unknown node must be nil")
	}
	if h.NodeID() != 0 || h.Name() != "h0" || h.NIC() != nic {
		t.Fatal("host accessors broken")
	}
	if sw.Name() != "sw0" || sw.Shared() != nil {
		t.Fatal("switch accessors broken")
	}
	if nic.Rate() != 10*units.Gbps || nic.Name() != "nic" {
		t.Fatal("port accessors broken")
	}
	if nic.QueueConfig(0).Name != "" {
		t.Fatal("queue config accessor broken")
	}
}

func TestKindAndColorStrings(t *testing.T) {
	cases := map[Kind]string{
		KindLegacyData: "legacy-data",
		KindCredit:     "credit",
		KindAckPro:     "ack-pro",
		KindAckRe:      "ack-re",
		KindHomaGrant:  "homa-grant",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind must be unknown")
	}
}

func TestFrameBytes(t *testing.T) {
	if FrameBytes(1460) != 1538 {
		t.Fatal("full frame wrong")
	}
	if FrameBytes(5000) != 1538 {
		t.Fatal("oversize payload must clamp to MTU")
	}
	if FrameBytes(1) != 84 {
		t.Fatal("minimum frame wrong")
	}
}
