package netem

import (
	"fmt"

	"flexpass/internal/obs"
)

// This file wires the fabric's existing *Stats structs into the obs
// registry so the periodic prober can turn them into time series —
// cumulative counters become per-interval deltas (port utilisation,
// drop/mark rates) and occupancies become instant gauges (queue depth,
// shared-buffer usage). All Register methods are nil-safe on reg, so
// construction code calls them unconditionally.

// Register exposes the port's transmit counters and per-queue state
// under "port/<name>" and "port/<name>/q<i>".
func (p *Port) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ent := "port/" + p.name
	reg.CounterFunc(ent, "tx_bytes", func() int64 { return p.stats.TxBytes })
	reg.CounterFunc(ent, "tx_packets", func() int64 { return p.stats.TxPackets })
	reg.CounterFunc(ent, "faults_injected", func() int64 { return p.faults.Injected })
	// Per-cause injected-loss breakdown (see FaultStats): registered
	// unconditionally so degradation artifacts can attribute every
	// injected drop to the fault event that caused it.
	reg.CounterFunc(ent, "faults_link_down", func() int64 { return p.faults.LinkDown })
	reg.CounterFunc(ent, "faults_burst_loss", func() int64 { return p.faults.BurstLoss })
	reg.CounterFunc(ent, "faults_credit_loss", func() int64 { return p.faults.CreditLoss })
	for i, q := range p.queues {
		q := q
		qe := fmt.Sprintf("%s/q%d", ent, i)
		reg.Gauge(qe, "bytes", q.lenBytes)
		reg.Gauge(qe, "red_bytes", func() int64 { return q.redB })
		reg.CounterFunc(qe, "dropped", func() int64 { return q.stats.Dropped })
		reg.CounterFunc(qe, "dropped_red", func() int64 { return q.stats.DroppedRed })
		reg.CounterFunc(qe, "marked", func() int64 { return q.stats.Marked })
		reg.CounterFunc(qe, "enqueued_bytes", func() int64 { return q.stats.EnqueuedB })
	}
}

// Register exposes the switch's ingress counter, shared-buffer occupancy
// under "switch/<name>", and every egress port.
func (s *Switch) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ent := "switch/" + s.name
	reg.CounterFunc(ent, "rx_packets", func() int64 { return s.RxPackets })
	if s.shared != nil {
		reg.Gauge(ent, "shared_buffer_bytes", s.shared.Used)
	}
	for _, p := range s.ports {
		p.Register(reg)
	}
}

// Register exposes the host's ingress counter under "host/<name>" and
// its NIC port.
func (h *Host) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("host/"+h.name, "rx_packets", func() int64 { return h.RxPackets })
	h.nic.Register(reg)
}

// Register exposes every node in the network.
func (n *Network) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, s := range n.Switches {
		s.Register(reg)
	}
	for _, h := range n.Hosts {
		h.Register(reg)
	}
}
