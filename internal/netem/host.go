package netem

import (
	"flexpass/internal/sim"
)

// Host is an end host: a NIC egress port toward its ToR plus a handler
// installed by the transport framework. Per the paper's footnote 6, the NIC
// is configured like an edge switch port (same queue layout), so credit
// rate limiting and selective dropping also apply at the edge.
type Host struct {
	id      NodeID
	name    string
	eng     *sim.Engine
	nic     *Port
	delay   sim.Time // host processing delay applied per transmitted packet
	handler func(*Packet)

	// Outbound frames waiting out the host processing delay. One event is
	// scheduled per Send (so event ordering is identical to scheduling a
	// closure per packet), but the packet rides this FIFO and the single
	// pre-bound sendFn, not a fresh closure: the delay is constant, so
	// FIFO order and event dispatch order always agree.
	sendQ    []*Packet
	sendHead int
	sendFn   func()
	comp     sim.Component // profiling attribution for delayed-send events

	pool *PacketPool // optional packet free list (Network.EnablePacketPool)

	// RxPackets counts packets delivered to the handler.
	RxPackets int64
}

// NewHost creates a host. nic must already be constructed; the host takes
// ownership of it.
func NewHost(eng *sim.Engine, id NodeID, name string, nic *Port, delay sim.Time) *Host {
	nic.SetOwner(id)
	h := &Host{id: id, name: name, eng: eng, nic: nic, delay: delay}
	h.sendFn = h.sendNext
	h.comp = eng.Component("netem/host")
	return h
}

// NodeID implements Node.
func (h *Host) NodeID() NodeID { return h.id }

// Name returns the host's label.
func (h *Host) Name() string { return h.name }

// NIC returns the host's egress port.
func (h *Host) NIC() *Port { return h.nic }

// SetHandler installs the receive callback. The transport framework calls
// this once per host.
func (h *Host) SetHandler(fn func(*Packet)) { h.handler = fn }

// NewPacket returns a zeroed packet for the caller to fill and Send. With
// pooling enabled it reuses a recycled frame; otherwise it allocates.
// Callers overwrite the whole struct (`*pkt = Packet{...}`), so the
// literal style of non-pooled call sites carries over unchanged.
func (h *Host) NewPacket() *Packet {
	if h.pool != nil {
		return h.pool.get()
	}
	return &Packet{}
}

// Send transmits a packet from this host after the host processing delay.
func (h *Host) Send(pkt *Packet) {
	pkt.Src = h.id
	if h.delay > 0 {
		h.sendQ = append(h.sendQ, pkt)
		prev := h.eng.SetComponent(h.comp)
		h.eng.After(h.delay, h.sendFn)
		h.eng.SetComponent(prev)
		return
	}
	h.nic.Send(pkt)
}

// sendNext hands the oldest delayed frame to the NIC.
func (h *Host) sendNext() {
	pkt := h.sendQ[h.sendHead]
	h.sendQ[h.sendHead] = nil
	h.sendHead++
	if h.sendHead >= len(h.sendQ) {
		h.sendQ = h.sendQ[:0]
		h.sendHead = 0
	} else if h.sendHead > 64 && h.sendHead*2 > len(h.sendQ) {
		n := copy(h.sendQ, h.sendQ[h.sendHead:])
		for i := n; i < len(h.sendQ); i++ {
			h.sendQ[i] = nil
		}
		h.sendQ = h.sendQ[:n]
		h.sendHead = 0
	}
	h.nic.Send(pkt)
}

// Receive implements Node: deliver to the transport handler. With pooling
// enabled the packet is recycled when the handler returns — handlers must
// not retain it (see PacketPool).
func (h *Host) Receive(pkt *Packet) {
	h.RxPackets++
	if h.handler != nil {
		h.handler(pkt)
	}
	h.pool.put(pkt)
}
