package netem

import (
	"flexpass/internal/sim"
)

// Host is an end host: a NIC egress port toward its ToR plus a handler
// installed by the transport framework. Per the paper's footnote 6, the NIC
// is configured like an edge switch port (same queue layout), so credit
// rate limiting and selective dropping also apply at the edge.
type Host struct {
	id      NodeID
	name    string
	eng     *sim.Engine
	nic     *Port
	delay   sim.Time // host processing delay applied per transmitted packet
	handler func(*Packet)

	// RxPackets counts packets delivered to the handler.
	RxPackets int64
}

// NewHost creates a host. nic must already be constructed; the host takes
// ownership of it.
func NewHost(eng *sim.Engine, id NodeID, name string, nic *Port, delay sim.Time) *Host {
	nic.SetOwner(id)
	return &Host{id: id, name: name, eng: eng, nic: nic, delay: delay}
}

// NodeID implements Node.
func (h *Host) NodeID() NodeID { return h.id }

// Name returns the host's label.
func (h *Host) Name() string { return h.name }

// NIC returns the host's egress port.
func (h *Host) NIC() *Port { return h.nic }

// SetHandler installs the receive callback. The transport framework calls
// this once per host.
func (h *Host) SetHandler(fn func(*Packet)) { h.handler = fn }

// Send transmits a packet from this host after the host processing delay.
func (h *Host) Send(pkt *Packet) {
	pkt.Src = h.id
	if h.delay > 0 {
		h.eng.After(h.delay, func() { h.nic.Send(pkt) })
		return
	}
	h.nic.Send(pkt)
}

// Receive implements Node: deliver to the transport handler.
func (h *Host) Receive(pkt *Packet) {
	h.RxPackets++
	if h.handler != nil {
		h.handler(pkt)
	}
}
