package netem

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// poolPair builds two directly-connected hosts on one network with the
// packet pool enabled.
func poolPair(eng *sim.Engine) (*Host, *Host, *PacketPool) {
	net := NewNetwork(eng)
	mk := func(name string) *Host {
		nic := NewPort(eng, name+"-nic", 40*units.Gbps, sim.Microsecond,
			PortConfig{Queues: []QueueConfig{{Name: "Q0"}}}, nil)
		h := NewHost(eng, net.AllocID(), name, nic, sim.Microsecond)
		net.AddHost(h)
		return h
	}
	ha, hb := mk("a"), mk("b")
	ha.NIC().Connect(hb)
	hb.NIC().Connect(ha)
	pool := net.EnablePacketPool()
	return ha, hb, pool
}

// TestZeroAllocPooledHop pins the data-plane allocation budget: with the
// packet pool enabled and warm, a full host→host hop — NewPacket, Send
// through the host delay FIFO, NIC serialization, delivery, handler,
// recycle — performs zero heap allocations.
func TestZeroAllocPooledHop(t *testing.T) {
	eng := sim.NewEngine(1)
	ha, hb, _ := poolPair(eng)
	hb.SetHandler(func(pkt *Packet) {})
	dst := hb.NodeID()
	send := func() {
		pkt := ha.NewPacket()
		*pkt = Packet{Dst: dst, Size: MTUWire}
		ha.Send(pkt)
	}
	for i := 0; i < 32; i++ {
		send()
	}
	eng.Run(eng.Now() + sim.Millisecond) // warm queues, pipes, free lists
	allocs := testing.AllocsPerRun(500, func() {
		send()
		eng.Run(eng.Now() + sim.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("pooled hop allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPoolRecyclesFrames checks the ownership contract end to end: every
// consumed frame comes back, and a warm steady state stops allocating
// fresh packets entirely.
func TestPoolRecyclesFrames(t *testing.T) {
	eng := sim.NewEngine(1)
	ha, hb, pool := poolPair(eng)
	hb.SetHandler(func(pkt *Packet) {})
	dst := hb.NodeID()
	const rounds = 200
	for i := 0; i < rounds; i++ {
		pkt := ha.NewPacket()
		*pkt = Packet{Dst: dst, Size: MTUWire}
		ha.Send(pkt)
		eng.Run(eng.Now() + sim.Millisecond)
	}
	if pool.Recycled != rounds {
		t.Fatalf("recycled %d frames, want %d", pool.Recycled, rounds)
	}
	// Sequential sends reuse one frame: after the first miss the pool
	// never allocates again.
	if pool.Fresh != 1 {
		t.Fatalf("allocated %d fresh frames, want 1", pool.Fresh)
	}
	if hb.RxPackets != rounds {
		t.Fatalf("delivered %d packets, want %d", hb.RxPackets, rounds)
	}
}

// TestPoolRecyclesDrops verifies dropping ports return frames to the pool
// rather than leaking them to the collector.
func TestPoolRecyclesDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	net := NewNetwork(eng)
	nic := NewPort(eng, "nic", 40*units.Gbps, sim.Microsecond,
		PortConfig{Queues: []QueueConfig{{Name: "Q0", CapBytes: 2 * MTUWire}}}, nil)
	h := NewHost(eng, net.AllocID(), "h", nic, 0)
	net.AddHost(h)
	nic.Connect(h) // loop back; destination unimportant for drop counting
	pool := net.EnablePacketPool()

	// Burst past the 2-frame private cap in zero simulated time: the
	// overflow must be recycled immediately.
	for i := 0; i < 10; i++ {
		pkt := h.NewPacket()
		*pkt = Packet{Dst: h.NodeID(), Size: MTUWire}
		h.Send(pkt)
	}
	if nic.QueueStats(0).Dropped == 0 {
		t.Fatal("expected private-cap drops")
	}
	if pool.Recycled != nic.QueueStats(0).Dropped {
		t.Fatalf("recycled %d, want %d (one per drop)", pool.Recycled, nic.QueueStats(0).Dropped)
	}
}
