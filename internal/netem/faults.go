package netem

// Fault injection: random non-congestion packet loss on a port, modelling
// the paper's §4.3 failure discussion ("the proactive sub-flow ... can
// still experience non-congestion losses, e.g. due to switch failures").
// Losses are drawn from the engine's deterministic random stream, so
// faulty runs are exactly reproducible.

// FaultStats counts injected losses.
type FaultStats struct {
	Injected int64 // packets dropped by fault injection
}

// SetLossRate makes the port drop each packet independently with the given
// probability before enqueueing it (wire corruption / silent switch
// failure). Rate 0 disables injection. Credits, ACKs, and data are all
// subject to loss, as on a real faulty link.
func (p *Port) SetLossRate(rate float64) {
	p.lossRate = rate
}

// FaultStats returns the injected-loss counters.
func (p *Port) FaultStats() FaultStats { return p.faults }
