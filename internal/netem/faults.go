package netem

import (
	"flexpass/internal/units"
)

// Fault injection: deterministic non-congestion failures on a port,
// modelling the paper's §4.3 failure discussion ("the proactive sub-flow
// ... can still experience non-congestion losses, e.g. due to switch
// failures") and the credit-loss sensitivity of credit-clocked transports
// (ExpressPass §5). Every random decision is drawn from the engine's
// seeded stream, so faulty runs are exactly reproducible: same seed +
// same fault schedule ⇒ bit-identical packet fates.
//
// Four orthogonal fault mechanisms live on each Port, applied in a fixed
// order at Send time (administrative state first, then targeted loss,
// then the loss model):
//
//  1. Down state (SetDown): the port blackholes every packet handed to it
//     and pauses its serializer. A frame already being serialized when the
//     link goes down is considered on the wire and still delivers; queued
//     frames stay buffered and resume when the link comes back up.
//  2. Degraded rate (SetRateFraction): the serializer runs at a fraction
//     of line rate. The in-flight frame finishes at the rate it started
//     with; subsequent frames use the degraded rate.
//  3. Credit-targeted loss (SetCreditLossRate): Bernoulli loss applied
//     only to KindCredit packets — the worst case for credit-clocked
//     schemes, which interpret credit loss as a congestion signal.
//  4. Burst loss (SetGilbertElliott): a two-state Gilbert–Elliott Markov
//     model. SetLossRate is the degenerate single-state case and keeps
//     its historical behaviour (one RNG draw per packet, identical
//     decision sequence), so pre-existing runs replay unchanged.

// FaultStats counts injected losses, in total and by cause.
type FaultStats struct {
	Injected   int64 // all packets dropped by fault injection
	LinkDown   int64 // dropped because the port was administratively down
	BurstLoss  int64 // dropped by the Gilbert–Elliott / Bernoulli loss model
	CreditLoss int64 // credit packets dropped by credit-targeted loss
}

// GilbertElliott parameterizes the classic two-state burst-loss model: the
// channel is either Good or Bad, each state drops packets independently
// with its own probability, and the state flips with per-packet transition
// probabilities. Mean burst (Bad-run) length is 1/PBadGood packets; mean
// gap (Good-run) length is 1/PGoodBad. The zero value disables the model.
type GilbertElliott struct {
	PGoodBad float64 // per-packet probability of a Good→Bad transition
	PBadGood float64 // per-packet probability of a Bad→Good transition
	LossGood float64 // drop probability while Good (usually 0)
	LossBad  float64 // drop probability while Bad (usually ~1)
}

// enabled reports whether the model can ever drop or change state.
func (g GilbertElliott) enabled() bool {
	return g.LossGood > 0 || g.LossBad > 0 || g.PGoodBad > 0 || g.PBadGood > 0
}

// Bernoulli returns the degenerate one-state model dropping each packet
// independently with probability rate (the historical SetLossRate).
func Bernoulli(rate float64) GilbertElliott {
	return GilbertElliott{LossGood: rate, LossBad: rate}
}

// SetLossRate makes the port drop each packet independently with the given
// probability before enqueueing it (wire corruption / silent switch
// failure). Rate 0 disables injection. Credits, ACKs, and data are all
// subject to loss, as on a real faulty link. It is the Bernoulli special
// case of SetGilbertElliott and consumes exactly one random draw per
// packet, so runs recorded before the burst-loss model existed replay
// bit-identically.
func (p *Port) SetLossRate(rate float64) {
	p.SetGilbertElliott(Bernoulli(rate))
}

// SetGilbertElliott installs (or, with the zero value, removes) the burst
// loss model. The channel starts in the Good state. Loss decisions and
// state transitions draw from the engine's deterministic random stream:
// one draw per packet for the loss decision when the current state can
// drop, plus one draw when the current state can transition.
func (p *Port) SetGilbertElliott(g GilbertElliott) {
	p.ge = g
	p.geOn = g.enabled()
	p.geBad = false
}

// LossModel returns the currently installed Gilbert–Elliott parameters
// (the zero value when loss injection is off).
func (p *Port) LossModel() GilbertElliott { return p.ge }

// SetCreditLossRate makes the port drop each KindCredit packet
// independently with the given probability (rate 0 disables). Data, ACKs,
// and credit requests pass unharmed: this is the paper's worst case for
// credit-clocked transports, which must treat lost credits as wasted
// allocation without stalling the flow.
func (p *Port) SetCreditLossRate(rate float64) { p.creditLoss = rate }

// SetDown takes the port administratively down (true) or back up (false).
// While down the port blackholes every packet handed to it — counted as
// LinkDown fault drops, observed as DropLinkDown hop events — and its
// serializer pauses; already-queued frames are retained and resume
// transmission when the port comes back up. A frame mid-serialization
// when the link fails is already on the wire and still delivers.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	if !down {
		p.kick()
	}
}

// Down reports the administrative state.
func (p *Port) Down() bool { return p.down }

// SetRateFraction degrades the serializer to frac of the port's line rate
// (0 < frac < 1), or restores full rate (frac <= 0 or >= 1). The frame
// currently being serialized finishes at the rate it started with; only
// subsequent transmissions pace at the degraded rate. Queue rate limits
// (credit pacing) are unaffected — they model the switch's shaper
// configuration, not the physical link.
func (p *Port) SetRateFraction(frac float64) {
	if frac <= 0 || frac >= 1 {
		p.effRate = p.rate
		return
	}
	p.effRate = p.rate.Scale(frac)
}

// EffectiveRate returns the current serialization rate (line rate unless
// degraded by SetRateFraction).
func (p *Port) EffectiveRate() units.Rate { return p.effRate }

// FaultStats returns the injected-loss counters.
func (p *Port) FaultStats() FaultStats { return p.faults }

// injectFault applies the port's fault state to an incoming packet,
// before classification. It reports true when the packet was consumed
// (dropped and recycled).
func (p *Port) injectFault(pkt *Packet) bool {
	if p.down {
		p.faults.Injected++
		p.faults.LinkDown++
		p.dropFault(pkt, DropLinkDown)
		return true
	}
	if p.creditLoss > 0 && pkt.Kind == KindCredit && p.eng.Rand().Float64() < p.creditLoss {
		p.faults.Injected++
		p.faults.CreditLoss++
		p.dropFault(pkt, DropCreditLoss)
		return true
	}
	if p.geOn {
		loss := p.ge.LossGood
		if p.geBad {
			loss = p.ge.LossBad
		}
		drop := loss > 0 && p.eng.Rand().Float64() < loss
		// State transition after the loss decision; a state that cannot
		// transition consumes no randomness, which keeps the historical
		// single-draw-per-packet sequence of the Bernoulli case intact.
		if p.geBad {
			if p.ge.PBadGood > 0 && p.eng.Rand().Float64() < p.ge.PBadGood {
				p.geBad = false
			}
		} else {
			if p.ge.PGoodBad > 0 && p.eng.Rand().Float64() < p.ge.PGoodBad {
				p.geBad = true
			}
		}
		if drop {
			p.faults.Injected++
			p.faults.BurstLoss++
			p.dropFault(pkt, DropFault)
			return true
		}
	}
	return false
}

// dropFault records and recycles a fault-dropped packet. Fault drops are
// injection accounting, never queue drops: they happen before
// classification, so hop observers see queue -1.
func (p *Port) dropFault(pkt *Packet, reason DropReason) {
	if p.hop != nil {
		p.hop.HopDrop(p.eng.Now(), p, -1, pkt, reason)
	}
	p.pool.put(pkt)
}
