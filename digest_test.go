package flexpass

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
)

// FlowsDigest hashes every per-flow outcome (completion, FCT, byte and
// retransmission accounting) into one hex digest. Two runs produce the
// same digest iff their flow-visible results are byte-identical, which is
// the repository's contract for engine/data-plane optimizations: they may
// change how fast the simulator runs, never what it computes.
func FlowsDigest(flows []*Flow) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, fl := range flows {
		w(int64(fl.ID))
		w(fl.Size)
		w(int64(fl.Start))
		w(int64(fl.FCT()))
		w(fl.RxBytes)
		w(fl.RxBytesPro)
		w(fl.RxBytesRe)
		w(int64(fl.Timeouts))
		w(int64(fl.Retransmits))
		w(int64(fl.ProRetx))
		w(int64(fl.RedundantSegs))
		w(fl.MaxReorderB)
		w(int64(fl.CreditsGranted))
		w(int64(fl.CreditsWasted))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenDigests are the per-transport digests of runGoldenScenario,
// recorded before the hot-path overhaul (event pooling, monomorphic
// heap, packet recycling) landed. Any scheduling-order change — however
// subtle — shows up here as a digest mismatch, so optimizations that are
// supposed to be behaviour-preserving are caught explicitly.
//
// Recorded on linux/amd64, go1.24. If a digest changes INTENTIONALLY
// (a behavioural fix or model change), re-record it with:
//
//	go test -run TestGoldenDigest -v .
var goldenDigests = map[string]string{
	"flexpass":    "10a4e94034b6d1f7",
	"expresspass": "fa4b5c89f6ae1e73",
	"dctcp":       "0580af3cb6559723",
	"homa":        "75a8ca3fb22ce850",
	"phost":       "0bc385501275211f",
	"mixed":       "e1567e585b3580e2",
}

// runGoldenScenario runs a small mixed-size contention scenario — an
// incast into host 4, a reverse bulk flow, and staggered short flows —
// on a 5-host single-switch testbed under one transport ("mixed" runs
// FlexPass, DCTCP and ExpressPass side by side) and returns the flow
// digest.
func runGoldenScenario(transport string, pool bool) string {
	tb := NewTestbed(TestbedConfig{Hosts: 5, LinkRate: 10 * Gbps, Seed: 7, PoolPackets: pool})
	tp := func(i int) string {
		if transport != "mixed" {
			return transport
		}
		return []string{"flexpass", "dctcp", "expresspass"}[i%3]
	}
	tb.StartFlowAt(0, tp(0), 0, 4, 2_000_000)
	tb.StartFlowAt(0, tp(1), 4, 0, 500_000)
	tb.StartFlowAt(100*Microsecond, tp(2), 1, 4, 150_000)
	tb.StartFlowAt(120*Microsecond, tp(3), 2, 4, 30_000)
	tb.StartFlowAt(130*Microsecond, tp(4), 3, 4, 8_000)
	tb.StartFlowAt(200*Microsecond, tp(5), 1, 2, 1_460)
	tb.StartFlowAt(2*Millisecond, tp(6), 0, 4, 64_000)
	tb.Run(200 * Millisecond)
	for _, fl := range tb.Flows() {
		if !fl.Completed {
			panic(fmt.Sprintf("golden scenario: %s flow %d incomplete", transport, fl.ID))
		}
	}
	return FlowsDigest(tb.Flows())
}

var goldenTransports = []string{"flexpass", "expresspass", "dctcp", "homa", "phost", "mixed"}

// TestGoldenDigest proves determinism end to end: every transport's
// scenario run twice yields the same digest, and (on the recording
// platform) the digest equals the checked-in pre-optimization value.
func TestGoldenDigest(t *testing.T) {
	for _, tp := range goldenTransports {
		tp := tp
		t.Run(tp, func(t *testing.T) {
			d1 := runGoldenScenario(tp, false)
			d2 := runGoldenScenario(tp, false)
			if d1 != d2 {
				t.Fatalf("non-deterministic: %s vs %s", d1, d2)
			}
			t.Logf("%s digest: %s", tp, d1)
			want := goldenDigests[tp]
			if runtime.GOARCH != "amd64" {
				// Floating-point scheduling arithmetic may fuse differently
				// off amd64; determinism within the platform still holds.
				t.Skipf("golden constants recorded on amd64; got %s", runtime.GOARCH)
			}
			if d1 != want {
				t.Fatalf("digest %s != recorded %s — scheduling-visible behaviour changed", d1, want)
			}
		})
	}
}

// TestGoldenDigestPooled proves packet recycling is invisible to results:
// the pooled run of every golden scenario produces the byte-identical
// digest of the unpooled run.
func TestGoldenDigestPooled(t *testing.T) {
	for _, tp := range goldenTransports {
		tp := tp
		t.Run(tp, func(t *testing.T) {
			plain := runGoldenScenario(tp, false)
			pooled := runGoldenScenario(tp, true)
			if plain != pooled {
				t.Fatalf("pooling changed results: plain %s pooled %s", plain, pooled)
			}
		})
	}
}
