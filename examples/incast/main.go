// Incast: the paper's Fig 8 scenario — an 8-to-1 incast of 64kB
// responses at increasing fan-in. DCTCP hits retransmission timeouts at
// high degree; FlexPass and ExpressPass never do, and FlexPass's reactive
// first-RTT keeps its tail lowest.
package main

import (
	"fmt"

	"flexpass"
)

func main() {
	fmt.Printf("%-8s %-14s %-12s %-s\n", "flows", "transport", "max FCT", "timeouts")
	for _, n := range []int{16, 48, 96} {
		for _, tp := range []string{"dctcp", "expresspass", "flexpass"} {
			maxFCT, timeouts := runIncast(tp, n)
			fmt.Printf("%-8d %-14s %-12v %d\n", n, tp, maxFCT, timeouts)
		}
	}
}

func runIncast(tp string, n int) (flexpass.Time, int) {
	tb := flexpass.NewTestbed(flexpass.TestbedConfig{
		Kind:     flexpass.SingleSwitch,
		Hosts:    9, // 8 senders + 1 receiver, as on the paper's testbed
		LinkRate: 10 * flexpass.Gbps,
	})
	var flows []*flexpass.Flow
	for i := 0; i < n; i++ {
		// Synchronized responses: all flows start (almost) together.
		at := flexpass.Time(i) * 100 * flexpass.Nanosecond
		flows = append(flows, tb.StartFlowAt(at, tp, i%8, 8, 64_000))
	}
	tb.Run(2 * flexpass.Second)
	var worst flexpass.Time
	timeouts := 0
	for _, fl := range flows {
		if !fl.Completed {
			worst = 2 * flexpass.Second
			continue
		}
		if fct := fl.FCT(); fct > worst {
			worst = fct
		}
		timeouts += fl.Timeouts
	}
	return worst, timeouts
}
