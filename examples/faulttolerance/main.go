// Fault tolerance: the paper's §4.3 failure discussion — FlexPass's
// proactive sub-flow never sees congestive loss, but switch failures can
// still corrupt packets. This example injects random non-congestion loss
// on the path and compares how FlexPass, ExpressPass, and DCTCP recover:
// the credit loop repairs FlexPass and ExpressPass losses within ~an RTT,
// while DCTCP falls back to duplicate-ACK recovery and, for tail losses,
// full RTOs.
package main

import (
	"fmt"

	"flexpass"
)

func main() {
	fmt.Printf("%-8s %-14s %-12s %-8s %-8s\n", "loss", "transport", "FCT", "retx", "RTOs")
	for _, loss := range []float64{0.001, 0.01, 0.05} {
		for _, tp := range []string{"dctcp", "expresspass", "flexpass", "phost"} {
			fct, retx, rtos, ok := run(tp, loss)
			if !ok {
				fmt.Printf("%-8.3f %-14s %-12s\n", loss, tp, "INCOMPLETE")
				continue
			}
			fmt.Printf("%-8.3f %-14s %-12v %-8d %-8d\n", loss, tp, fct, retx, rtos)
		}
	}
}

func run(tp string, loss float64) (flexpass.Time, int, int, bool) {
	tb := flexpass.NewTestbed(flexpass.TestbedConfig{Hosts: 2, LinkRate: 10 * flexpass.Gbps})
	// Random loss on the data direction and the reverse (ACK/credit)
	// direction alike — a silently failing switch.
	tb.SetLossRate(1, loss, true)
	fl := tb.StartFlow(tp, 0, 1, 5_000_000)
	tb.Run(2 * flexpass.Second)
	return fl.FCT(), fl.Retransmits, fl.Timeouts, fl.Completed
}
