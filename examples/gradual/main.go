// Gradual deployment: the paper's central experiment (Fig 10/12) at small
// scale — transition a Clos fabric from all-DCTCP to FlexPass rack by
// rack, and watch tail latency of small flows improve for upgraded
// traffic without harming legacy traffic. Compare with the naïve
// ExpressPass rollout, which wrecks the legacy tail mid-deployment.
package main

import (
	"fmt"

	"flexpass"
	"flexpass/internal/harness"
	"flexpass/internal/metrics"
)

func main() {
	base := flexpass.NewScenario(false) // scaled-down Clos, web search, 50% load
	base.Duration = 10 * flexpass.Millisecond

	fmt.Println("rolling out rack by rack (0% -> 100%), web search @ 50% load")
	fmt.Printf("%-10s %-6s %-16s %-16s %-14s\n",
		"scheme", "dep", "p99 small legacy", "p99 small new", "avg FCT (all)")

	for _, scheme := range []flexpass.Scheme{flexpass.SchemeNaive, flexpass.SchemeFlexPass} {
		for _, dep := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			sc := base
			sc.Scheme = scheme
			sc.Deployment = dep
			res := flexpass.Run(sc)
			small := metrics.Small()
			legacy, upgraded := small, small
			legacy.Legacy = metrics.Bool(true)
			upgraded.Legacy = metrics.Bool(false)
			fmt.Printf("%-10s %-6.2f %-16v %-16v %-14v\n",
				scheme, dep,
				metrics.Percentile(res.Flows.FCTs(legacy), 0.99),
				metrics.Percentile(res.Flows.FCTs(upgraded), 0.99),
				metrics.Mean(res.Flows.FCTs(metrics.Filter{})))
		}
		fmt.Println()
	}
	_ = harness.SchemeOWF // (see cmd/experiments for the full four-scheme study)
}
