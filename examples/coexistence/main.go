// Coexistence: the paper's Fig 7 microbenchmark — per-sub-flow throughput
// of FlexPass under three scenarios on a 2-to-1 testbed, printed as a
// 5ms-resolution time series:
//
//	(a) one FlexPass flow alone: the proactive sub-flow takes ~w_q of the
//	    link, the reactive sub-flow opportunistically grabs the rest;
//	(b) two FlexPass flows: fair halves, carried almost entirely by the
//	    proactive sub-flows;
//	(c) FlexPass vs DCTCP: both take their guaranteed half, the reactive
//	    sub-flow finds no spare bandwidth.
package main

import (
	"fmt"

	"flexpass"
)

const window = 5 * flexpass.Millisecond

func main() {
	scenarioA()
	scenarioB()
	scenarioC()
}

func sampleLoop(tb *flexpass.Testbed, label string, cols []string, read func() []int64) {
	fmt.Printf("\n== %s ==\n%-8s", label, "t(ms)")
	for _, c := range cols {
		fmt.Printf("%12s", c)
	}
	fmt.Println()
	prev := make([]int64, len(cols))
	for t := window; t <= 45*flexpass.Millisecond; t += window {
		tb.Run(t)
		cur := read()
		fmt.Printf("%-8.0f", t.Millis())
		for i := range cur {
			gbps := float64(cur[i]-prev[i]) * 8 / window.Seconds() / 1e9
			fmt.Printf("%10.2fG ", gbps)
			prev[i] = cur[i]
		}
		fmt.Println()
	}
}

func scenarioA() {
	tb := flexpass.NewTestbed(flexpass.TestbedConfig{Hosts: 3, LinkRate: 10 * flexpass.Gbps})
	fl := tb.StartFlow("flexpass", 0, 2, 1<<30)
	sampleLoop(tb, "(a) 1 FlexPass flow", []string{"proactive", "reactive"},
		func() []int64 { return []int64{fl.RxBytesPro, fl.RxBytesRe} })
}

func scenarioB() {
	tb := flexpass.NewTestbed(flexpass.TestbedConfig{Hosts: 3, LinkRate: 10 * flexpass.Gbps})
	f1 := tb.StartFlow("flexpass", 0, 2, 1<<30)
	f2 := tb.StartFlow("flexpass", 1, 2, 1<<30)
	sampleLoop(tb, "(b) 2 FlexPass flows", []string{"proactive", "reactive"},
		func() []int64 {
			return []int64{f1.RxBytesPro + f2.RxBytesPro, f1.RxBytesRe + f2.RxBytesRe}
		})
}

func scenarioC() {
	tb := flexpass.NewTestbed(flexpass.TestbedConfig{Hosts: 3, LinkRate: 10 * flexpass.Gbps})
	dc := tb.StartFlow("dctcp", 1, 2, 1<<30)
	fp := tb.StartFlow("flexpass", 0, 2, 1<<30)
	sampleLoop(tb, "(c) 1 DCTCP + 1 FlexPass flow", []string{"dctcp", "proactive", "reactive"},
		func() []int64 { return []int64{dc.RxBytes, fp.RxBytesPro, fp.RxBytesRe} })
}
