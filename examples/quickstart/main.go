// Quickstart: the paper's headline claim in 40 lines — a FlexPass flow
// and a legacy DCTCP flow sharing a 10Gbps bottleneck split it evenly,
// where naïve ExpressPass would starve the legacy flow.
package main

import (
	"fmt"

	"flexpass"
)

func main() {
	// Three hosts on one switch with the paper's queue configuration
	// (Q0 credits / Q1 FlexPass / Q2 legacy, w_q = 0.5). Hosts 0 and 1
	// send to host 2, so the switch egress to host 2 is the bottleneck.
	tb := flexpass.NewTestbed(flexpass.TestbedConfig{
		Kind:     flexpass.SingleSwitch,
		Hosts:    3,
		LinkRate: 10 * flexpass.Gbps,
	})

	fp := tb.StartFlow("flexpass", 0, 2, 1<<30)
	dc := tb.StartFlow("dctcp", 1, 2, 1<<30)

	tb.Run(100 * flexpass.Millisecond)

	tot := fp.RxBytes + dc.RxBytes
	fmt.Printf("after 100ms on a 10Gbps bottleneck:\n")
	fmt.Printf("  FlexPass: %5.2f Gbps (%.0f%%)  [proactive %.2f / reactive %.2f Gbps]\n",
		gbps(fp.RxBytes), 100*float64(fp.RxBytes)/float64(tot),
		gbps(fp.RxBytesPro), gbps(fp.RxBytesRe))
	fmt.Printf("  DCTCP:    %5.2f Gbps (%.0f%%)\n",
		gbps(dc.RxBytes), 100*float64(dc.RxBytes)/float64(tot))
	fmt.Printf("  timeouts: %d\n", fp.Timeouts+dc.Timeouts)

	if share := float64(dc.RxBytes) / float64(tot); share > 0.35 && share < 0.65 {
		fmt.Println("co-existence holds: neither transport is starved")
	} else {
		fmt.Println("WARNING: unfair split — co-existence violated")
	}
}

func gbps(bytes int64) float64 {
	return float64(bytes) * 8 / 0.1 / 1e9 // bytes over 100ms
}
