// Package flexpass is a from-scratch Go reproduction of "FlexPass: A Case
// for Flexible Credit-based Transport for Datacenter Networks" (Lim et
// al., EuroSys 2023).
//
// It contains a deterministic packet-level discrete-event simulator of
// datacenter fabrics (switch queues with strict priority, DWRR, ECN
// marking, color-aware selective dropping, shared dynamic buffers, ECMP
// Clos topologies) and full implementations of the transports the paper
// studies: DCTCP, ExpressPass, a simplified HOMA, the layering baseline,
// and FlexPass itself — the credit-based transport split into a proactive
// (credit-scheduled) and a reactive (opportunistic, DCTCP-controlled)
// sub-flow that co-exist with legacy traffic through weighted fair
// queueing and selective dropping.
//
// This root package is the public façade:
//
//   - Testbed: build small fabrics and start flows by transport name, for
//     hand-rolled experiments (see examples/).
//   - Scenario / Run / Sweep: the paper's large-scale deployment studies
//     on the 3-tier Clos fabric.
//   - The Fig* drivers regenerate every figure of the paper's evaluation
//     (see EXPERIMENTS.md for the recorded results).
//
// Everything is standard library only and bit-for-bit reproducible for a
// given configuration and seed.
package flexpass
