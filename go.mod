module flexpass

go 1.22
