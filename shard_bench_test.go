package flexpass

// BenchmarkShardScaling measures the parallel engine's events/sec at
// 1/2/4/8 shards across three fabric scales (the repo's 48-host
// SmallClos, the paper's 192-host PaperClos, and the 768-host BigClos),
// web-search at load 0.8 — the ISSUE-8 scaling series. `make
// bench-shards` runs it through benchjson into BENCH_PR8.json.
//
// The reported "cpus" metric records how many cores the run actually
// had: conservative sharding can only beat the single engine when the
// shard goroutines run on distinct cores, so on a 1-CPU container the
// series measures synchronization overhead, not speedup (see DESIGN.md
// §8).

import (
	"fmt"
	"runtime"
	"testing"

	"flexpass/internal/harness"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/workload"
)

func shardBenchScenario(clos topo.ClosParams, shards int) harness.Scenario {
	sc := harness.BaseScenario(false)
	sc.Clos = clos
	sc.Scheme = harness.SchemeFlexPass
	sc.Workload = workload.WebSearch
	sc.Load = 0.8
	sc.Shards = shards
	sc.Duration = 1 * sim.Millisecond
	sc.Drain = 10 * sim.Millisecond
	return sc
}

func BenchmarkShardScaling(b *testing.B) {
	fabrics := []struct {
		name string
		clos topo.ClosParams
	}{
		{"small", topo.SmallClos},
		{"paper", topo.PaperClos},
		{"big", topo.BigClos},
	}
	for _, fab := range fabrics {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", fab.name, shards), func(b *testing.B) {
				var events uint64
				var wall float64
				for i := 0; i < b.N; i++ {
					res := harness.Run(shardBenchScenario(fab.clos, shards))
					events += res.Events
					wall += res.WallClock.Seconds()
				}
				if wall > 0 {
					b.ReportMetric(float64(events)/wall, "events/sec")
				}
				b.ReportMetric(float64(events)/float64(b.N), "events")
				b.ReportMetric(float64(runtime.NumCPU()), "cpus")
			})
		}
	}
}
