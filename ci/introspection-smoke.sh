#!/usr/bin/env bash
# Smoke-test the runtime introspection plane end to end:
#
#   1. run the CI micro-sweep with the live server attached,
#   2. poll /status until it reports every point done,
#   3. assert /metrics is well-formed Prometheus exposition with the
#      final counters,
#   4. produce an engine self-profile (table + folded stacks) from a
#      short flexsim run.
#
# The sweep reuses ci/microsweep.json (16 points on the tiny fabric),
# so the whole script runs in well under a minute.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
OUT=lake-smoke
TOTAL=16

rm -rf "$OUT"

go run ./cmd/flexfarm run -spec ci/microsweep.json -out "$OUT" \
  -serve "$ADDR" -serve-linger 60s -summary-every 0 &
FARM_PID=$!
trap 'kill $FARM_PID 2>/dev/null || true' EXIT

# Wait for the server to come up, then for the sweep to finish.
status=""
for _ in $(seq 1 300); do
  if status=$(curl -sf "http://$ADDR/status" 2>/dev/null); then
    done_count=$(echo "$status" | grep -o '"done": *[0-9]*' | grep -o '[0-9]*')
    [ "${done_count:-0}" -eq "$TOTAL" ] && break
  fi
  sleep 0.2
done
echo "final /status:"
echo "$status"
done_count=$(echo "$status" | grep -o '"done": *[0-9]*' | grep -o '[0-9]*')
if [ "${done_count:-0}" -ne "$TOTAL" ]; then
  echo "FAIL: /status never reported done=$TOTAL" >&2
  exit 1
fi
echo "$status" | grep -q "\"total\": *$TOTAL" || {
  echo "FAIL: /status total != $TOTAL" >&2; exit 1; }
echo "$status" | grep -q '"failed": *0' || {
  echo "FAIL: sweep reported failures" >&2; exit 1; }

# /metrics: well-formed exposition carrying the final counters.
metrics=$(curl -sf "http://$ADDR/metrics")
echo "final /metrics:"
echo "$metrics"
echo "$metrics" | grep -q '^# TYPE flexpass_points_done counter$' || {
  echo "FAIL: missing TYPE line for points_done" >&2; exit 1; }
echo "$metrics" | grep -q "^flexpass_points_done{entity=\"farm\"} $TOTAL\$" || {
  echo "FAIL: points_done != $TOTAL in exposition" >&2; exit 1; }
echo "$metrics" | grep -q "^flexpass_points_total{entity=\"farm\"} $TOTAL\$" || {
  echo "FAIL: points_total != $TOTAL in exposition" >&2; exit 1; }
# Every non-comment line must parse as name{entity="..."} value.
bad=$(echo "$metrics" | grep -v '^#' | grep -cEv '^[a-zA-Z_][a-zA-Z0-9_]*\{entity="[^"]*"\} -?[0-9]+$' || true)
if [ "$bad" -ne 0 ]; then
  echo "FAIL: $bad malformed exposition lines" >&2; exit 1
fi

kill $FARM_PID 2>/dev/null || true
wait $FARM_PID 2>/dev/null || true
trap - EXIT

# Engine self-profile: folded stacks must be non-empty and every line
# must carry the engine; prefix and a positive weight.
go run ./cmd/flexsim -duration 2 -profile-out engine.folded
test -s engine.folded || { echo "FAIL: engine.folded empty" >&2; exit 1; }
grep -qv '^engine;[^ ]* [0-9][0-9]*$' engine.folded && {
  echo "FAIL: malformed folded-stack lines:" >&2
  grep -v '^engine;[^ ]* [0-9][0-9]*$' engine.folded >&2
  exit 1
}
echo "folded profile:"
cat engine.folded

echo "introspection smoke OK"
