package flexpass

import (
	"fmt"

	"flexpass/internal/faults"
	"flexpass/internal/harness"
	"flexpass/internal/metrics"
	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	_ "flexpass/internal/transport/schemes" // link the built-in schemes in
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

// Re-exported core types. External users interact with these through the
// façade; see the internal packages for full documentation.
type (
	// Time is a simulated instant/duration in picoseconds.
	Time = sim.Time
	// Rate is a link or pacing rate in bits per second.
	Rate = units.Rate
	// ByteSize is a data volume in bytes.
	ByteSize = units.ByteSize
	// Flow is a transport flow with live statistics.
	Flow = transport.Flow
	// Scheme selects a deployment strategy (§6.2).
	Scheme = harness.Scheme
	// Scenario describes one large-scale simulation run.
	Scenario = harness.Scenario
	// Result carries a run's collected metrics.
	Result = harness.Result
	// DeploymentPoint is one (scheme, deployment%) measurement.
	DeploymentPoint = harness.DeploymentPoint
	// FlowRecord is a finished flow's statistics snapshot.
	FlowRecord = metrics.FlowRecord
	// CDF is a flow-size distribution.
	CDF = workload.CDF
	// TelemetryOptions enables the run-wide stats registry, periodic
	// probes, and optional transport trace ring (Scenario.Telemetry).
	TelemetryOptions = obs.Options
	// RunArtifact is a completed run's exported telemetry (manifest,
	// time series, counters, histograms, trace) — JSONL round-trippable.
	RunArtifact = obs.Run
	// FaultPlan is a deterministic scripted fault timeline
	// (Scenario.FaultPlan); see internal/faults for the event taxonomy.
	FaultPlan = faults.Plan
	// FaultEvent is one scripted fault in a plan.
	FaultEvent = faults.Event
	// Degradation is a clean-vs-faulted robustness report.
	Degradation = harness.Degradation
)

// Fault-plan construction and the graceful-degradation harness.
var (
	// ParseFaultPlan decodes and validates a JSON fault plan.
	ParseFaultPlan = faults.ParsePlan
	// ParseFaultSpec parses the CLI shorthand (down@LINK@WINDOW,...).
	ParseFaultSpec = faults.ParseSpec
	// RunDegradation runs schemes clean and faulted and reports deltas.
	RunDegradation = harness.RunDegradation
)

// ReadRunArtifact loads a JSONL run artifact written by
// RunArtifact.WriteJSONLFile (or flexsim -telemetry-out).
func ReadRunArtifact(path string) (*RunArtifact, error) { return obs.ReadJSONLFile(path) }

// Common units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Kbps        = units.Kbps
	Mbps        = units.Mbps
	Gbps        = units.Gbps
	KB          = units.KB
	MB          = units.MB
)

// Deployment schemes.
const (
	SchemeNaive    = harness.SchemeNaive
	SchemeOWF      = harness.SchemeOWF
	SchemeLayering = harness.SchemeLayering
	SchemeFlexPass = harness.SchemeFlexPass
)

// Workload distributions.
var (
	WebSearch     = workload.WebSearch
	CacheFollower = workload.CacheFollower
	DataMining    = workload.DataMining
	Hadoop        = workload.Hadoop
)

// NewScenario returns the paper's §6.2 configuration; full selects the
// 192-host fabric, otherwise a scaled-down Clos.
func NewScenario(full bool) Scenario { return harness.BaseScenario(full) }

// Run executes a scenario.
func Run(sc Scenario) *Result { return harness.Run(sc) }

// Sweep runs every (scheme, deployment) combination in parallel.
func Sweep(base Scenario, schemes []Scheme, deployments []float64) []DeploymentPoint {
	return harness.Sweep(base, schemes, deployments)
}

// TestbedKind selects a small fabric shape.
type TestbedKind int

// Testbed shapes.
const (
	// SingleSwitch connects all hosts to one switch (the paper's §6.1
	// testbed shape).
	SingleSwitch TestbedKind = iota
	// DumbbellPairs builds n/2 sender hosts and n/2 receiver hosts joined
	// by a bottleneck link at the fabric line rate.
	DumbbellPairs
)

// TestbedConfig parameterizes a Testbed.
type TestbedConfig struct {
	Kind     TestbedKind
	Hosts    int     // total hosts
	LinkRate Rate    // default 10Gbps
	WQ       float64 // FlexPass queue weight, default 0.5
	Seed     int64
	// PoolPackets recycles consumed frames through a per-network free
	// list (see DESIGN.md "Performance"). Results are byte-identical
	// with pooling on or off; custom Receive handlers must not retain
	// a *Packet past the callback when enabled.
	PoolPackets bool
}

// Testbed is a small fabric with the FlexPass switch configuration, for
// hand-built experiments: start flows by transport name and run the
// clock. All hosts share one switch (or a dumbbell) configured with the
// paper's three-queue layout.
type Testbed struct {
	Eng    *sim.Engine
	Fabric *topo.Fabric

	cfg     TestbedConfig
	agents  []*transport.Agent
	env     *transport.SchemeEnv
	schemes map[string]transport.Scheme // lazily built per transport name
	nextID  uint64
	flows   []*Flow
}

// NewTestbed builds a testbed.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Hosts == 0 {
		cfg.Hosts = 3
	}
	if cfg.LinkRate == 0 {
		cfg.LinkRate = 10 * Gbps
	}
	if cfg.WQ == 0 {
		cfg.WQ = 0.5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	spec := topo.Spec{WQ: cfg.WQ}
	params := topo.Params{
		LinkRate:  cfg.LinkRate,
		LinkDelay: 2 * Microsecond,
		HostDelay: 1 * Microsecond,
		SwitchBuf: 4500 * KB,
		BufAlpha:  0.25,
		Profile:   topo.FlexPassProfile(spec),
	}
	var fab *topo.Fabric
	switch cfg.Kind {
	case SingleSwitch:
		fab = topo.SingleSwitch(eng, cfg.Hosts, params)
	case DumbbellPairs:
		fab = topo.Dumbbell(eng, cfg.Hosts/2, cfg.Hosts-cfg.Hosts/2, cfg.LinkRate, params)
	default:
		panic("flexpass: unknown testbed kind")
	}
	if cfg.PoolPackets {
		fab.Net.EnablePacketPool()
	}
	tb := &Testbed{Eng: eng, Fabric: fab, cfg: cfg}
	for i := 0; i < cfg.Hosts; i++ {
		tb.agents = append(tb.agents, transport.NewAgent(eng, fab.Net.Host(i)))
	}
	tb.env = &transport.SchemeEnv{
		Eng:      eng,
		LinkRate: cfg.LinkRate,
		WQ:       cfg.WQ,
		Spec:     spec,
	}
	tb.schemes = make(map[string]transport.Scheme)
	return tb
}

// SetLossRate injects random non-congestion loss around host dst,
// symmetric in mechanism on both directions:
//
//   - forward: every last-hop switch egress that delivers to host dst
//     (data, ACKs, and credits arriving at the host);
//   - reverse (when true): additionally the host's own NIC egress
//     (everything the host itself sends).
//
// The last hop is resolved by port peer identity, not registration
// index — on a DumbbellPairs fabric port 0 of switch 0 is the core
// link, so the old index-based lookup degraded the wrong link. Loss
// goes through the port fault API (netem.Port.SetLossRate, the
// Bernoulli case of the Gilbert–Elliott model), so drops are counted
// in Port.FaultStats and observed as fault drops. Rate 0 clears.
func (tb *Testbed) SetLossRate(dst int, rate float64, reverse bool) {
	id := tb.Fabric.Net.Host(dst).NodeID()
	ports := tb.Fabric.Net.PortsTo(id)
	if len(ports) == 0 {
		panic(fmt.Sprintf("flexpass: no egress delivers to host %d", dst))
	}
	for _, p := range ports {
		p.SetLossRate(rate)
	}
	if reverse {
		tb.Fabric.Net.Host(dst).NIC().SetLossRate(rate)
	}
}

// FaultPort returns the last-hop switch egress toward host dst — the
// port SetLossRate degrades — for direct use with the port fault API
// (SetDown, SetRateFraction, SetGilbertElliott, SetCreditLossRate).
func (tb *Testbed) FaultPort(dst int) *netem.Port {
	id := tb.Fabric.Net.Host(dst).NodeID()
	ports := tb.Fabric.Net.PortsTo(id)
	if len(ports) == 0 {
		panic(fmt.Sprintf("flexpass: no egress delivers to host %d", dst))
	}
	return ports[0]
}

// StartFlow begins a flow of size bytes from host src to host dst using
// the named transport — any name in the scheme registry: "flexpass",
// "dctcp", "expresspass", "layering", "homa", "phost", ... The returned
// Flow exposes live statistics (RxBytes, FCT, ...).
func (tb *Testbed) StartFlow(transportName string, src, dst int, size int64) *Flow {
	fl := tb.newFlow(transportName, src, dst, size, tb.Eng.Now())
	tb.startNow(fl)
	return fl
}

// StartFlowAt schedules a flow to begin at an absolute simulated time.
func (tb *Testbed) StartFlowAt(at Time, transportName string, src, dst int, size int64) *Flow {
	fl := tb.newFlow(transportName, src, dst, size, at)
	tb.Eng.At(at, func() { tb.startNow(fl) })
	return fl
}

func (tb *Testbed) newFlow(transportName string, src, dst int, size int64, at Time) *Flow {
	tb.nextID++
	fl := &Flow{
		ID:        tb.nextID,
		Src:       tb.agents[src],
		Dst:       tb.agents[dst],
		Size:      size,
		Start:     at,
		Transport: transportName,
		Legacy:    transportName == transport.SchemeDCTCP,
	}
	tb.flows = append(tb.flows, fl)
	return fl
}

func (tb *Testbed) startNow(fl *Flow) {
	// Schemes are memoized under the name the flow was started with
	// ("naive" and "expresspass" resolve to distinct instances of the same
	// transport; each keeps its own pHost-style per-run state).
	sch := tb.schemes[fl.Transport]
	if sch == nil {
		var err error
		if sch, err = transport.NewScheme(fl.Transport, tb.env); err != nil {
			panic(fmt.Sprintf("flexpass: unknown transport %q", fl.Transport))
		}
		tb.schemes[fl.Transport] = sch
	}
	sch.Start(fl)
}

// Run advances the simulation until the given absolute time.
func (tb *Testbed) Run(until Time) { tb.Eng.Run(until) }

// Flows returns every flow started on the testbed.
func (tb *Testbed) Flows() []*Flow { return tb.flows }

// Figure drivers (see EXPERIMENTS.md).
var (
	// Fig1a: ExpressPass starving DCTCP on a dumbbell.
	Fig1a = harness.Fig1a
	// Fig1b: 16 HOMA flows starving 16 DCTCP flows.
	Fig1b = harness.Fig1b
	// Fig7: FlexPass sub-flow throughput shares on the testbed.
	Fig7 = harness.Fig7
	// Fig8: incast tail FCT for DCTCP/ExpressPass/FlexPass.
	Fig8 = harness.Fig8
	// Fig9: starvation-time comparison.
	Fig9 = harness.Fig9
	// Fig5a / Fig5b: flow-splitting and queueing ablations.
	Fig5a = harness.Fig5a
	Fig5b = harness.Fig5b
	// Fig10 / Fig11: deployment sweeps (background / mixed traffic).
	Fig10 = harness.Fig10
	Fig11 = harness.Fig11
	// Fig14: load sensitivity; Fig15and16: workload sweep.
	Fig14      = harness.Fig14
	Fig15and16 = harness.Fig15and16
	// Fig17 / Fig18: selective-dropping threshold and w_q trade-offs.
	Fig17 = harness.Fig17
	Fig18 = harness.Fig18
)
